// Package protocol is the registry of communication algorithms: named,
// self-describing protocol runners that execute deterministically from
// a declarative Spec (protocol name + parameter map, parseable from the
// compact string form "nos:budgetmul=2,source=5").
//
// It mirrors internal/scenario, the registry of topology families: a
// protocol declares its typed parameters (name, default, range, doc),
// so command-line tools list the full catalogue with -list and
// experiments can sweep *every* registered protocol without naming any
// of them (exp.E13ProtocolMatrix races every protocol over every
// scenario family). The two registries are the two axes of the paper's
// central comparison — algorithms against geometries.
//
// Every runner returns a *broadcast.Result: the paper's broadcast
// algorithms and the baseline floods natively, the §5 applications
// (wake-up, consensus, leader election, alert) through a result adapter
// that maps "protocol completed correctly" onto Result.AllInformed.
// The original entry points (broadcast.RunNoS, baseline.RunFlood,
// apps/*.Run) remain the primary implementations; the registry wraps
// them without changing their behavior.
//
// Registering a protocol makes it visible everywhere at once: the
// broadcast-sim CLI (-alg/-list), the protocol×scenario matrix
// experiment E13, the registry-wide property tests, and the public
// sinrcast.RunProtocol.
package protocol

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"sinrcast/internal/broadcast"
	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// Channel builds the physical layer for a run. It matches
// broadcast.Config.Channel so runners can hand it straight through;
// nil always means "each protocol's default", the exact SINR engine.
type Channel = func(net *network.Network) (sim.Resolver, error)

// NamedChannel maps an -engine selection onto a Channel — the single
// adapter behind every engine flag (broadcast-sim, experiments E14,
// sinrcast.RunProtocolOn). "" and "exact" return a nil Channel (each
// protocol's default is already the exact engine); unknown names
// error, so CLIs can classify them as usage errors.
func NamedChannel(name string) (Channel, error) {
	switch name {
	case "", "exact":
		return nil, nil
	case "grid", "hier", "auto":
		return func(net *network.Network) (sim.Resolver, error) {
			r, err := sinr.NewNamedEngine(name, net.Space, net.Params)
			if err != nil {
				return nil, err
			}
			return r, nil
		}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown engine %q (want exact, grid, hier or auto)", name)
	}
}

// Param describes one parameter of a protocol.
type Param struct {
	// Name is the key used in Spec.Params and the compact string form.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Default is the value used when a Spec omits the parameter.
	Default float64
	// Min and Max bound the accepted values (inclusive). Runners may
	// apply stricter, network-dependent checks (e.g. source < n) that
	// static bounds cannot express.
	Min, Max float64
	// Int marks integer-valued parameters (station indices etc.).
	Int bool
}

// Build carries the resolved inputs of one execution: the seed and the
// protocol's parameter values with defaults filled in and ranges
// checked.
type Build struct {
	// Seed drives all protocol randomness.
	Seed uint64

	params  map[string]float64
	channel Channel
}

// Channel returns the physical-layer factory of this run (nil = the
// protocol's default engine). Runners thread it into their entry
// points; see RunOn.
func (b Build) Channel() Channel { return b.channel }

// Float returns the resolved value of a declared parameter. It panics
// on undeclared names: that is a bug in the protocol definition, not a
// user error (user input is validated before Build is constructed).
func (b Build) Float(name string) float64 {
	v, ok := b.params[name]
	if !ok {
		panic(fmt.Sprintf("protocol: runner read undeclared parameter %q", name))
	}
	return v
}

// Int returns a declared integer parameter.
func (b Build) Int(name string) int { return int(b.Float(name)) }

// Protocol is one registered algorithm.
type Protocol struct {
	// Name identifies the protocol in Spec strings; lowercase.
	Name string
	// Doc is a one-line description shown by -list.
	Doc string
	// Params declares the accepted parameters in display order.
	Params []Param
	// Run executes the protocol on the network. It must be
	// deterministic in (net, Build.Seed, params): same inputs, same
	// Result, regardless of goroutine or engine worker count.
	Run func(net *network.Network, b Build) (*broadcast.Result, error)
}

// param looks up a declared parameter by name.
func (p *Protocol) param(name string) (Param, bool) {
	for _, q := range p.Params {
		if q.Name == name {
			return q, true
		}
	}
	return Param{}, false
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Protocol{}
)

// Register adds a protocol to the registry. It panics on an empty or
// duplicate name, a missing Run function, or a Param whose default
// violates its own bounds — all programming errors caught at init.
func Register(p Protocol) {
	if p.Name == "" {
		panic("protocol: Register with empty protocol name")
	}
	if p.Run == nil {
		panic(fmt.Sprintf("protocol: %q has no Run function", p.Name))
	}
	seen := map[string]bool{}
	for _, q := range p.Params {
		if q.Name == "" || seen[q.Name] {
			panic(fmt.Sprintf("protocol: %q declares empty or duplicate parameter %q", p.Name, q.Name))
		}
		seen[q.Name] = true
		if q.Default < q.Min || q.Default > q.Max {
			panic(fmt.Sprintf("protocol: %q parameter %q default %v outside [%v, %v]",
				p.Name, q.Name, q.Default, q.Min, q.Max))
		}
		if q.Int && q.Default != math.Trunc(q.Default) {
			panic(fmt.Sprintf("protocol: %q integer parameter %q has fractional default %v",
				p.Name, q.Name, q.Default))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("protocol: %q registered twice", p.Name))
	}
	cp := p
	registry[p.Name] = &cp
}

// Lookup returns the named protocol.
func Lookup(name string) (*Protocol, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Protocols returns every registered protocol sorted by name.
func Protocols() []*Protocol {
	regMu.RLock()
	out := make([]*Protocol, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of all registered protocols.
func Names() []string {
	ps := Protocols()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Describe renders the catalogue of registered protocols with their
// parameter docs — the text behind the CLI's -list flag.
func Describe() string {
	var sb strings.Builder
	for _, p := range Protocols() {
		fmt.Fprintf(&sb, "%s — %s\n", p.Name, p.Doc)
		width := 0
		for _, q := range p.Params {
			if len(q.Name) > width {
				width = len(q.Name)
			}
		}
		for _, q := range p.Params {
			def := formatValue(q.Default)
			kind := ""
			if q.Int {
				kind = ", int"
			}
			fmt.Fprintf(&sb, "    %-*s  %s (default %s%s)\n", width, q.Name, q.Doc, def, kind)
		}
	}
	return sb.String()
}
