package serve

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"sinrcast/internal/faultinject"
	"sinrcast/internal/network"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

// Cache is the content-addressed warm-engine cache behind the run-job
// path. A key canonically identifies a deployment and its physics —
// cacheKey composes scenario.Spec.String(), sinr.EngineKey, and the
// seed — so two requests for the same key are guaranteed the same
// topology slabs and byte-identical Resolve output.
//
// A miss pays the full setup once: scenario generation plus engine
// construction. The built engine becomes an immutable prototype that
// is never handed out; every request — the missing one included —
// receives a clone (sinr.CloneResolver, ~hundreds of nanoseconds,
// sharing the prototype's topology). Engines the sinr package cannot
// clone (wrapper channels with per-trial state, foreign resolvers)
// degrade gracefully: the network is still cached, and each request
// builds a fresh engine over it.
//
// Concurrent misses on one key collapse to a single build
// (singleflight): the first caller constructs, the rest wait on its
// flight and leave with clones. Entries are LRU-evicted against a byte
// budget estimated from station and edge counts.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	lru     *list.List // of *cacheEntry, front = most recent
	entries map[string]*list.Element
	flights map[string]*flight

	// neg is the per-key circuit breaker: repeated build failures open
	// a negative entry with a TTL, so a poisoned spec fast-fails
	// instead of triggering a rebuild storm. See CircuitOpenError.
	neg              map[string]*negEntry
	breakerThreshold int
	breakerTTL       time.Duration

	hits      int64
	misses    int64
	evictions int64
	trips     int64
	fastFails int64
}

// negEntry tracks consecutive build failures for one key. Once
// failures reaches the threshold the breaker opens until the deadline;
// past the deadline the next Get is a half-open probe — one more
// failure re-opens immediately, a success resets the key.
type negEntry struct {
	failures int
	until    time.Time
	cause    error
}

// Breaker defaults: three consecutive build failures open the key for
// thirty seconds.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerTTL       = 30 * time.Second
)

// CircuitOpenError fast-fails a Get (and, at the transport, a submit)
// for a key whose builds keep failing. Transports map it to HTTP 422.
type CircuitOpenError struct {
	Key   string
	Until time.Time
	Cause error
}

func (e *CircuitOpenError) Error() string {
	return fmt.Sprintf("serve: circuit open for %q until %s after repeated build failures: %v",
		e.Key, e.Until.UTC().Format(time.RFC3339), e.Cause)
}

func (e *CircuitOpenError) Unwrap() error { return e.Cause }

type cacheEntry struct {
	key   string
	net   *network.Network
	proto sim.Resolver // cloneable prototype; nil when only net is cached
	bytes int64
}

type flight struct {
	done chan struct{}
	ent  *cacheEntry
	err  error
}

// DefaultCacheBytes is the byte budget used when Config.CacheBytes is
// zero: enough for a few dozen mid-size deployments.
const DefaultCacheBytes = 256 << 20

// NewCache builds a cache with the given byte budget. budget <= 0
// disables caching entirely: Get always builds fresh and reports a
// miss.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget:           budget,
		lru:              list.New(),
		entries:          make(map[string]*list.Element),
		flights:          make(map[string]*flight),
		neg:              make(map[string]*negEntry),
		breakerThreshold: DefaultBreakerThreshold,
		breakerTTL:       DefaultBreakerTTL,
	}
}

// SetBreaker tunes the circuit breaker (tests). threshold <= 0
// disables it.
func (c *Cache) SetBreaker(threshold int, ttl time.Duration) {
	c.mu.Lock()
	c.breakerThreshold = threshold
	c.breakerTTL = ttl
	c.mu.Unlock()
}

// Negative reports whether key's circuit is currently open, returning
// the fast-fail error if so. Transports call it at admission time so a
// poisoned spec answers 422 without ever entering the job queue.
func (c *Cache) Negative(key string) error {
	if c == nil || c.budget <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.negativeLocked(key)
}

func (c *Cache) negativeLocked(key string) error {
	e := c.neg[key]
	if e == nil || c.breakerThreshold <= 0 || e.failures < c.breakerThreshold {
		return nil
	}
	if time.Now().After(e.until) {
		return nil // half-open: let one probe build through
	}
	c.fastFails++
	return &CircuitOpenError{Key: key, Until: e.until, Cause: e.cause}
}

// noteFailureLocked records one failed build; at the threshold the
// breaker opens (or re-opens after a failed half-open probe).
func (c *Cache) noteFailureLocked(key string, cause error) {
	if c.breakerThreshold <= 0 {
		return
	}
	e := c.neg[key]
	if e == nil {
		e = &negEntry{}
		c.neg[key] = e
	}
	e.failures++
	e.cause = cause
	if e.failures >= c.breakerThreshold {
		if e.failures == c.breakerThreshold || time.Now().After(e.until) {
			c.trips++
		}
		e.until = time.Now().Add(c.breakerTTL)
	}
}

// entryBytes estimates the resident size of a cached deployment: the
// network's points and adjacency plus the engine topology's kernels
// and cell structure. It intentionally overcounts a little — eviction
// pressure should err toward freeing memory.
func entryBytes(n *network.Network) int64 {
	return 144*int64(n.N()) + 8*int64(n.EdgeCount()) + 4096
}

// Get returns the deployment and a request-private engine for key. On
// a hit neither builder runs; on a miss buildNet then buildEngine run
// exactly once across all concurrent callers of the key. The returned
// engine is a clone of the cached prototype whenever the sinr package
// can clone it — hit and miss hand out the same kind of object, so
// results cannot depend on cache temperature — and a fresh
// buildEngine product otherwise.
func (c *Cache) Get(key string,
	buildNet func() (*network.Network, error),
	buildEngine func(*network.Network) (sim.Resolver, error),
) (*network.Network, sim.Resolver, bool, error) {
	if c.budget <= 0 {
		if err := faultinject.Fire(faultinject.CacheBuild); err != nil {
			return nil, nil, false, err
		}
		net, err := buildNet()
		if err != nil {
			return nil, nil, false, err
		}
		eng, err := buildEngine(net)
		if err != nil {
			return nil, nil, false, err
		}
		return net, eng, false, nil
	}

	for {
		c.mu.Lock()
		if err := c.negativeLocked(key); err != nil {
			c.mu.Unlock()
			return nil, nil, false, err
		}
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			ent := el.Value.(*cacheEntry)
			c.hits++
			c.mu.Unlock()
			return c.handout(ent, buildEngine, true)
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, nil, false, f.err
			}
			// The leader built it; waiters are hits (only the leader
			// counted the miss). If the entry is gone (nil — the flight
			// failed to cache), loop back around: it may already have
			// been evicted under pressure, making us a fresh miss.
			if f.ent != nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return c.handout(f.ent, buildEngine, true)
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.misses++
		c.mu.Unlock()

		err := faultinject.Fire(faultinject.CacheBuild)
		var net *network.Network
		if err == nil {
			net, err = buildNet()
		}
		var proto sim.Resolver
		if err == nil {
			proto, err = buildEngine(net)
		}
		if err != nil {
			f.err = err
			c.mu.Lock()
			delete(c.flights, key)
			c.noteFailureLocked(key, err)
			c.mu.Unlock()
			close(f.done)
			return nil, nil, false, err
		}
		ent := &cacheEntry{key: key, net: net, bytes: entryBytes(net)}
		if sinr.Cloneable(proto) {
			ent.proto = proto
		}
		c.mu.Lock()
		delete(c.flights, key)
		delete(c.neg, key) // a successful build closes the breaker
		c.insertLocked(ent)
		c.mu.Unlock()
		f.ent = ent
		close(f.done)

		if ent.proto != nil {
			// The prototype is never handed out: the miss gets a clone
			// too, exactly like every later hit. An injected clone fault
			// degrades to a fresh build, never to the shared prototype.
			if faultinject.Fire(faultinject.EngineClone) == nil {
				eng, _ := sinr.CloneResolver(ent.proto)
				return net, eng, false, nil
			}
			eng, err := buildEngine(net)
			return net, eng, false, err
		}
		return net, proto, false, nil
	}
}

// handout produces a request-private engine from a cached entry.
func (c *Cache) handout(ent *cacheEntry, buildEngine func(*network.Network) (sim.Resolver, error), hit bool) (*network.Network, sim.Resolver, bool, error) {
	if ent.proto != nil && faultinject.Fire(faultinject.EngineClone) == nil {
		if eng, ok := sinr.CloneResolver(ent.proto); ok {
			return ent.net, eng, hit, nil
		}
	}
	eng, err := buildEngine(ent.net)
	if err != nil {
		return nil, nil, false, err
	}
	return ent.net, eng, hit, nil
}

// insertLocked adds ent and evicts least-recently-used entries until
// the budget holds again. An entry larger than the whole budget is
// evicted immediately — it would only displace everything else.
func (c *Cache) insertLocked(ent *cacheEntry) {
	if el, ok := c.entries[ent.key]; ok {
		// A concurrent flight lost a race we never start (flights are
		// keyed), but stay defensive: replace the existing entry.
		c.used -= el.Value.(*cacheEntry).bytes
		c.lru.Remove(el)
		delete(c.entries, ent.key)
	}
	c.entries[ent.key] = c.lru.PushFront(ent)
	c.used += ent.bytes
	for c.used > c.budget && c.lru.Len() > 0 {
		back := c.lru.Back()
		old := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.used -= old.bytes
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
// Negative/Trips/FastFails are the circuit-breaker gauges: open keys,
// breaker openings, and Gets answered from a negative entry.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Negative  int   `json:"negative"`
	Trips     int64 `json:"trips"`
	FastFails int64 `json:"fast_fails"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	open := 0
	now := time.Now()
	for _, e := range c.neg {
		if c.breakerThreshold > 0 && e.failures >= c.breakerThreshold && now.Before(e.until) {
			open++
		}
	}
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.used,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Negative:  open,
		Trips:     c.trips,
		FastFails: c.fastFails,
	}
}
