package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sinrcast/internal/network"
	"sinrcast/internal/scenario"
	"sinrcast/internal/sim"
	"sinrcast/internal/sinr"
)

func testBuilders(t *testing.T, n int, seed uint64) (func() (*network.Network, error), func(*network.Network) (sim.Resolver, error)) {
	t.Helper()
	spec := scenario.Spec{Family: "uniform", Params: map[string]float64{"n": float64(n)}}
	buildNet := func() (*network.Network, error) {
		return scenario.Generate(spec, sinr.DefaultParams(), seed)
	}
	buildEngine := func(net *network.Network) (sim.Resolver, error) {
		return sinr.NewNamedEngine("exact", net.Space, net.Params)
	}
	return buildNet, buildEngine
}

func TestCacheHitSharesNetwork(t *testing.T) {
	c := NewCache(DefaultCacheBytes)
	buildNet, buildEngine := testBuilders(t, 48, 3)

	net1, eng1, hit1, err := c.Get("k", buildNet, buildEngine)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first Get reported a hit")
	}
	net2, eng2, hit2, err := c.Get("k", buildNet, buildEngine)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("second Get reported a miss")
	}
	if net1 != net2 {
		t.Fatal("hit did not share the cached network")
	}
	if eng1 == eng2 {
		t.Fatal("hit handed out the same engine object — engines must be request-private")
	}
	// Both engines resolve identically: clones share topology, state is
	// private.
	r1, r2 := eng1.Resolve([]int{0, 1}), eng2.Resolve([]int{0, 1})
	if len(r1) != len(r2) {
		t.Fatalf("clone resolution differs: %d vs %d receptions", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("reception %d differs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestCacheSingleflight is the concurrency gate (run under -race in
// CI): many goroutines missing one key must collapse to a single
// build.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(DefaultCacheBytes)
	buildNet, buildEngine := testBuilders(t, 48, 5)
	var builds atomic.Int64
	countingNet := func() (*network.Network, error) {
		builds.Add(1)
		return buildNet()
	}

	const goroutines = 16
	var wg sync.WaitGroup
	engines := make([]sim.Resolver, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, eng, _, err := c.Get("k", countingNet, buildEngine)
			if err != nil {
				t.Error(err)
				return
			}
			engines[g] = eng
		}(g)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("%d builds for one key under concurrency, want 1 (singleflight)", builds.Load())
	}
	seen := map[sim.Resolver]bool{}
	for g, eng := range engines {
		if eng == nil {
			t.Fatalf("goroutine %d got no engine", g)
		}
		if seen[eng] {
			t.Fatalf("two goroutines share one engine object")
		}
		seen[eng] = true
	}
	cs := c.Stats()
	if cs.Misses != 1 {
		t.Fatalf("stats after singleflight: %+v (want 1 miss)", cs)
	}
}

// TestCacheBuildErrorPropagates: a failing build reaches every waiter
// and is not cached.
func TestCacheBuildErrorPropagates(t *testing.T) {
	c := NewCache(DefaultCacheBytes)
	boom := errors.New("boom")
	fails := 0
	_, _, _, err := c.Get("k",
		func() (*network.Network, error) { fails++; return nil, boom },
		nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err %v, want boom", err)
	}
	// The failure was not cached: a later Get retries the build.
	buildNet, buildEngine := testBuilders(t, 32, 1)
	_, _, hit, err := c.Get("k", buildNet, buildEngine)
	if err != nil || hit {
		t.Fatalf("after failed build: hit=%v err=%v, want a clean miss", hit, err)
	}
}

// TestCacheEviction: inserting past the byte budget evicts least-
// recently-used entries; touched entries survive.
func TestCacheEviction(t *testing.T) {
	buildNet, _ := testBuilders(t, 48, 1)
	net, err := buildNet()
	if err != nil {
		t.Fatal(err)
	}
	per := entryBytes(net)
	c := NewCache(3 * per) // room for ~3 of these deployments

	getKey := func(seed uint64) {
		t.Helper()
		bn, be := testBuilders(t, 48, seed)
		if _, _, _, err := c.Get(fmt.Sprintf("k%d", seed), bn, be); err != nil {
			t.Fatal(err)
		}
	}
	for seed := uint64(1); seed <= 3; seed++ {
		getKey(seed)
	}
	getKey(1) // touch k1 so k2 is the LRU
	getKey(4) // must evict k2
	cs := c.Stats()
	if cs.Evictions == 0 {
		t.Fatalf("no evictions after exceeding the budget: %+v", cs)
	}
	if cs.Bytes > cs.Budget {
		t.Fatalf("cache over budget after eviction: %+v", cs)
	}
	hitsBefore := c.Stats().Hits
	getKey(1) // k1 was touched — it must have survived
	if c.Stats().Hits != hitsBefore+1 {
		t.Fatal("recently-used entry was evicted before the LRU one")
	}
	bn, be := testBuilders(t, 48, 2)
	if _, _, hit, _ := c.Get("k2", bn, be); hit {
		t.Fatal("LRU entry survived eviction")
	}
}

// TestCacheDisabled: a non-positive budget builds fresh every time and
// never reports hits.
func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1)
	buildNet, buildEngine := testBuilders(t, 32, 1)
	for i := 0; i < 2; i++ {
		_, eng, hit, err := c.Get("k", buildNet, buildEngine)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatal("disabled cache reported a hit")
		}
		if eng == nil {
			t.Fatal("disabled cache returned no engine")
		}
	}
	if cs := c.Stats(); cs.Entries != 0 {
		t.Fatalf("disabled cache retained entries: %+v", cs)
	}
}

// TestCacheOversizedEntry: one entry larger than the whole budget must
// not pin the cache — it is evicted immediately, and the cache keeps
// working.
func TestCacheOversizedEntry(t *testing.T) {
	c := NewCache(1) // 1 byte: everything is oversized
	buildNet, buildEngine := testBuilders(t, 32, 1)
	_, eng, hit, err := c.Get("k", buildNet, buildEngine)
	if err != nil || hit || eng == nil {
		t.Fatalf("oversized miss: hit=%v err=%v", hit, err)
	}
	if cs := c.Stats(); cs.Entries != 0 || cs.Bytes != 0 {
		t.Fatalf("oversized entry retained: %+v", cs)
	}
	// Still serviceable.
	if _, eng, _, err := c.Get("k", buildNet, buildEngine); err != nil || eng == nil {
		t.Fatalf("cache wedged after oversized entry: %v", err)
	}
}
