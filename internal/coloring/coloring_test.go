package coloring

import (
	"math"
	"testing"
	"testing/quick"

	"sinrcast/internal/geom"
	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sinr"
)

// testParams returns a tiny deterministic schedule for machine tests:
// thresholds of 1 reception, short segments, Confirm=1.
func testParams() Params {
	return Params{
		N:        16,
		C1:       0.25,
		CEps:     8,
		PMax:     1.0 / 16,
		CPrime:   2,
		Confirm:  1,
		DTRounds: 1, // lg(16)=4 -> DTLen=4
		DTThresh: 0.25,
		PORounds: 1,
		POThresh: 0.25,
	}
}

func TestParamsValidateTable(t *testing.T) {
	ok := testParams()
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"valid", func(p *Params) {}, false},
		{"zero N", func(p *Params) { p.N = 0 }, true},
		{"zero C1", func(p *Params) { p.C1 = 0 }, true},
		{"ceps below 1", func(p *Params) { p.CEps = 0.5 }, true},
		{"pmax zero", func(p *Params) { p.PMax = 0 }, true},
		{"pmax ceps product too big", func(p *Params) { p.PMax = 0.2; p.CEps = 8 }, true},
		{"cprime zero", func(p *Params) { p.CPrime = 0 }, true},
		{"confirm zero", func(p *Params) { p.Confirm = 0 }, true},
		{"confirm above cprime", func(p *Params) { p.Confirm = 3 }, true},
		{"zero segment", func(p *Params) { p.DTRounds = 0 }, true},
		{"zero threshold", func(p *Params) { p.POThresh = 0 }, true},
		{"pstart >= pmax", func(p *Params) { p.N = 1; p.C1 = 1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := ok
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestScheduleArithmetic(t *testing.T) {
	p := testParams()
	if got := p.PStart(); got != 0.25/32 {
		t.Fatalf("PStart = %v", got)
	}
	// phases: pstart=1/128 doubling to pmax=1/16: 1/128,1/64,1/32 -> 3 phases.
	if got := p.Phases(); got != 3 {
		t.Fatalf("Phases = %d, want 3", got)
	}
	if p.DTLen() != 4 || p.POLen() != 4 {
		t.Fatalf("segment lengths = %d,%d", p.DTLen(), p.POLen())
	}
	if p.DTNeed() != 1 || p.PONeed() != 1 {
		t.Fatalf("needs = %d,%d", p.DTNeed(), p.PONeed())
	}
	if p.PhaseLen() != 2*(4+4) {
		t.Fatalf("PhaseLen = %d", p.PhaseLen())
	}
	if p.TotalRounds() != 3*16 {
		t.Fatalf("TotalRounds = %d", p.TotalRounds())
	}
	if p.NumColors() != 4 {
		t.Fatalf("NumColors = %d", p.NumColors())
	}
	if p.FinalColor() != 2.0/16 {
		t.Fatalf("FinalColor = %v", p.FinalColor())
	}
	if c := p.ColorOfPhase(1); c != 2*p.PStart() {
		t.Fatalf("ColorOfPhase(1) = %v", c)
	}
}

func TestDefaultParamsValidateAcrossN(t *testing.T) {
	for _, n := range []int{2, 8, 37, 100, 1000, 100000} {
		p := DefaultParams(n, 2, 1.0/3)
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestDefaultParamsScheduleGrowsLikeLogSquared(t *testing.T) {
	// Fact 7: O(log² n) rounds. Verify the schedule length ratio between
	// n and n² stays near (log n² / log n)² = 4 within slack.
	small := DefaultParams(256, 2, 1.0/3).TotalRounds()
	big := DefaultParams(256*256, 2, 1.0/3).TotalRounds()
	ratio := float64(big) / float64(small)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("schedule ratio n->n² = %v, want ~4", ratio)
	}
}

// feedMachine drives m over its full schedule, invoking recv(r) to decide
// whether a reception is delivered in round r.
func feedMachine(m *Machine, recv func(r int) bool) {
	total := m.Params().TotalRounds()
	for r := 0; r < total; r++ {
		m.Tick(r)
		if !m.Done() && recv(r) {
			m.OnRecv(r)
		}
	}
	m.Finish()
}

func TestMachineNoReceptionsSurvives(t *testing.T) {
	m, err := NewMachine(testParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	feedMachine(m, func(int) bool { return false })
	if !m.Done() {
		t.Fatal("machine not done after Finish")
	}
	if m.Color() != m.Params().FinalColor() {
		t.Fatalf("color = %v, want final %v", m.Color(), m.Params().FinalColor())
	}
}

func TestMachineQuitsOnDenseSignal(t *testing.T) {
	// Receptions every round: DT and PO both pass in phase 0, Confirm=1
	// -> quit with color pstart after the first DT+PO iteration.
	m, err := NewMachine(testParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	feedMachine(m, func(int) bool { return true })
	if m.Color() != m.Params().PStart() {
		t.Fatalf("color = %v, want pstart %v", m.Color(), m.Params().PStart())
	}
}

func TestMachineConfirmTwoNeedsTwoIterations(t *testing.T) {
	p := testParams()
	p.Confirm = 2
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	feedMachine(m, func(int) bool { return true })
	// Quit still in phase 0 (both iterations pass back to back), color
	// = pstart, but only after the second iteration: verify via the
	// fact the machine is Done with phase-0 color.
	if m.Color() != p.PStart() {
		t.Fatalf("color = %v, want pstart", m.Color())
	}
}

func TestMachineDTOnlyNeverQuits(t *testing.T) {
	// Receptions only during DT halves: Playoff never passes.
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	feedMachine(m, func(r int) bool {
		return !m.segmentOf(r).inPO
	})
	if m.Color() != p.FinalColor() {
		t.Fatalf("color = %v, want final (PO never passed)", m.Color())
	}
}

func TestMachinePOOnlyNeverQuits(t *testing.T) {
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	feedMachine(m, func(r int) bool {
		return m.segmentOf(r).inPO
	})
	if m.Color() != p.FinalColor() {
		t.Fatalf("color = %v, want final (DT never passed)", m.Color())
	}
}

func TestMachineQuitsInLaterPhase(t *testing.T) {
	// Receptions only from phase 1 onward: quit color = 2·pstart.
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	feedMachine(m, func(r int) bool {
		return r >= p.PhaseLen()
	})
	if m.Color() != 2*p.PStart() {
		t.Fatalf("color = %v, want 2·pstart = %v", m.Color(), 2*p.PStart())
	}
}

func TestMachinePVDoubles(t *testing.T) {
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.CurrentP() != p.PStart() {
		t.Fatalf("initial pv = %v", m.CurrentP())
	}
	// Drive through one full phase with no receptions.
	for r := 0; r <= p.PhaseLen(); r++ {
		m.Tick(r)
	}
	if m.CurrentP() != 2*p.PStart() {
		t.Fatalf("pv after phase 0 = %v, want doubled", m.CurrentP())
	}
}

func TestMachineReset(t *testing.T) {
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	feedMachine(m, func(int) bool { return true })
	if !m.Done() {
		t.Fatal("not done")
	}
	m.Reset()
	if m.Done() || m.Color() != 0 || m.CurrentP() != p.PStart() {
		t.Fatal("Reset did not clear state")
	}
	// Rerun identically.
	feedMachine(m, func(int) bool { return true })
	if m.Color() != p.PStart() {
		t.Fatalf("color after reset-run = %v", m.Color())
	}
}

func TestMachineTickPanicsOnRewind(t *testing.T) {
	m, err := NewMachine(testParams(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		m.Tick(r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Tick(0) after Tick(9) should panic")
		}
	}()
	m.Tick(0)
}

func TestMachineIgnoresOutOfScheduleRecv(t *testing.T) {
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	m.OnRecv(-1)
	m.OnRecv(p.TotalRounds() + 5)
	m.Finish()
	if m.Color() != p.FinalColor() {
		t.Fatalf("out-of-schedule receptions affected state: %v", m.Color())
	}
}

func TestMachineNeverTransmitsAfterQuit(t *testing.T) {
	p := testParams()
	m, err := NewMachine(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	quitRound := -1
	for r := 0; r < p.TotalRounds(); r++ {
		tx := m.Tick(r)
		if m.Done() && quitRound < 0 {
			quitRound = r
		}
		if m.Done() && tx {
			t.Fatalf("transmitted after quit at round %d", r)
		}
		if !m.Done() {
			m.OnRecv(r)
		}
	}
	if quitRound < 0 {
		t.Fatal("machine never quit despite receptions every round")
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: 3}
	net, err := netgen.Uniform(cfg, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams(net.N(), 2, net.Params.Eps)
	a, err := Run(net, par, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, par, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatalf("colors differ at %d between identical seeds", i)
		}
	}
}

func TestRunColorsInPalette(t *testing.T) {
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: 4}
	net, err := netgen.Uniform(cfg, 96, 12)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultParams(net.N(), 2, net.Params.Eps)
	res, err := Run(net, par, 1)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[float64]bool{par.FinalColor(): true}
	for ph := 0; ph < par.Phases(); ph++ {
		valid[par.ColorOfPhase(ph)] = true
	}
	for i, c := range res.Colors {
		if !valid[c] {
			t.Fatalf("station %d has off-palette color %v", i, c)
		}
		if c <= 0 {
			t.Fatalf("station %d has non-positive color", i)
		}
	}
}

func TestRunRejectsInvalidParams(t *testing.T) {
	cfg := netgen.Config{Params: sinr.DefaultParams(), Seed: 4}
	net, err := netgen.Uniform(cfg, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams(net.N(), 2, net.Params.Eps)
	bad.CPrime = 0
	if _, err := Run(net, bad, 1); err == nil {
		t.Fatal("want error for invalid params")
	}
}

func TestCheckLemma1HandCrafted(t *testing.T) {
	// Three stations within one unit ball, two colors.
	net, err := network.New(geom.NewLine([]float64{0, 0.3, 0.6}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	colors := []float64{0.1, 0.1, 0.4}
	st := CheckLemma1(net, colors)
	// Color 0.1 mass in any ball covering both = 0.2; color 0.4 mass 0.4.
	if math.Abs(st.MaxMass-0.4) > 1e-12 || st.Color != 0.4 {
		t.Fatalf("Lemma1 = %+v, want mass 0.4", st)
	}
}

func TestCheckLemma2HandCrafted(t *testing.T) {
	// eps = 1/3 -> radius 1/6. Stations 0,1 close (0.1), station 2 far.
	net, err := network.New(geom.NewLine([]float64{0, 0.1, 0.5}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	colors := []float64{0.2, 0.2, 0.05}
	st := CheckLemma2(net, colors)
	// Station 2's ε/2-ball holds only itself: best mass 0.05.
	if st.Station != 2 || math.Abs(st.MinBestMass-0.05) > 1e-12 {
		t.Fatalf("Lemma2 = %+v, want station 2 mass 0.05", st)
	}
	// Stations 0,1 share color 0.2: their best mass is 0.4.
}

func TestPalette(t *testing.T) {
	p := Palette([]float64{0.5, 0.25, 0.5, 0.125})
	want := []float64{0.125, 0.25, 0.5}
	if len(p) != 3 {
		t.Fatalf("Palette = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Palette = %v, want %v", p, want)
		}
	}
}

func TestTotalMassPerBall(t *testing.T) {
	net, err := network.New(geom.NewLine([]float64{0, 0.5, 3}), sinr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m := TotalMassPerBall(net, []float64{0.1, 0.2, 0.4})
	if math.Abs(m[0]-0.3) > 1e-12 || math.Abs(m[1]-0.3) > 1e-12 || math.Abs(m[2]-0.4) > 1e-12 {
		t.Fatalf("TotalMassPerBall = %v", m)
	}
}

func TestSegmentOfProperty(t *testing.T) {
	// Property: segmentOf is monotone in phase/iter and every round maps
	// into a valid segment.
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(raw uint16) bool {
		r := int(raw) % p.TotalRounds()
		s := m.segmentOf(r)
		return s.phase >= 0 && s.phase < p.Phases() &&
			s.iter >= 0 && s.iter < p.CPrime
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHalfSegmentEndProperty(t *testing.T) {
	p := testParams()
	m, err := NewMachine(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Property: r < halfSegmentEnd(r) <= TotalRounds, and the half
	// segment containing r ends exactly where the next begins.
	for r := 0; r < p.TotalRounds(); r++ {
		end := m.halfSegmentEnd(r)
		if end <= r || end > p.TotalRounds() {
			t.Fatalf("halfSegmentEnd(%d) = %d out of range", r, end)
		}
		if end < p.TotalRounds() {
			cur := m.segmentOf(r)
			nxt := m.segmentOf(end)
			if cur == nxt {
				t.Fatalf("round %d and %d in same half segment", r, end)
			}
		}
	}
}
