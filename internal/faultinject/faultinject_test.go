package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestUnarmedFireZeroAlloc is the production-cost contract (run by
// name in CI): an unarmed hook — and a hook at a point other than the
// armed one — must not allocate on the steady-state path.
func TestUnarmedFireZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counting is unreliable under the race detector")
	}
	DisarmAll()
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := Fire(CacheBuild); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("unarmed Fire: %v allocs/op, want 0", allocs)
	}
	Arm(JournalSync, Fault{Every: 1})
	defer DisarmAll()
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := Fire(CacheBuild); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Fire at an unarmed point with another point armed: %v allocs/op, want 0", allocs)
	}
}

// TestDeterministicSchedule pins that the injected subset is a pure
// function of (seed, point, call index): two runs of the same armed
// schedule fail the exact same calls.
func TestDeterministicSchedule(t *testing.T) {
	defer DisarmAll()
	run := func() []int {
		Arm(CacheBuild, Fault{Prob: 0.3, Seed: 42})
		var failed []int
		for i := 1; i <= 200; i++ {
			if err := Fire(CacheBuild); err != nil {
				failed = append(failed, i)
			}
		}
		return failed
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob=0.3 fired %d/200 times — schedule degenerate", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d failures", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("failure %d at call %d vs %d", i, a[i], b[i])
		}
	}
	// Density sanity: 0.3 ± a wide tolerance over 200 draws.
	if len(a) < 30 || len(a) > 90 {
		t.Fatalf("prob=0.3 fired %d/200 times, want roughly 60", len(a))
	}
}

func TestEveryAndFirstTriggers(t *testing.T) {
	defer DisarmAll()
	Arm(EngineClone, Fault{Every: 3})
	for i := 1; i <= 9; i++ {
		err := Fire(EngineClone)
		if (i%3 == 0) != (err != nil) {
			t.Fatalf("every=3: call %d err=%v", i, err)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("injected error does not wrap ErrInjected: %v", err)
		}
	}
	Arm(EngineClone, Fault{First: 2})
	for i := 1; i <= 4; i++ {
		err := Fire(EngineClone)
		if (i <= 2) != (err != nil) {
			t.Fatalf("first=2: call %d err=%v", i, err)
		}
	}
	if got := Calls(EngineClone); got != 4 {
		t.Fatalf("Calls = %d, want 4 (re-arming resets counters)", got)
	}
	if got := Fired(EngineClone); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestStallSleepsInsteadOfFailing(t *testing.T) {
	defer DisarmAll()
	Arm(WorkerStall, Fault{First: 1, Stall: 20 * time.Millisecond})
	start := time.Now()
	if err := Fire(WorkerStall); err != nil {
		t.Fatalf("stall schedule returned an error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("stall slept only %v", d)
	}
	if err := Fire(WorkerStall); err != nil {
		t.Fatalf("past the schedule: %v", err)
	}
}

func TestDisarm(t *testing.T) {
	DisarmAll()
	Arm(CacheBuild, Fault{Every: 1})
	Arm(SinkFlush, Fault{Every: 1})
	Disarm(CacheBuild)
	if Armed(CacheBuild) {
		t.Fatal("CacheBuild still armed after Disarm")
	}
	if !Armed(SinkFlush) {
		t.Fatal("Disarm removed an unrelated point")
	}
	Disarm(SinkFlush)
	if Armed(SinkFlush) || Fire(SinkFlush) != nil {
		t.Fatal("SinkFlush still armed after removing the last point")
	}
}
