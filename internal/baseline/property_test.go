package baseline

import (
	"testing"
	"testing/quick"

	"sinrcast/internal/netgen"
	"sinrcast/internal/rng"
	"sinrcast/internal/sinr"
)

func TestPropertyPoliciesReturnValidProbabilities(t *testing.T) {
	net, err := netgen.Uniform(netgen.Config{Params: sinr.DefaultParams(), Seed: 3}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	gtd, err := NewGridTDMA(net)
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{
		NewDecay(net.N()),
		NewDaumStyle(net),
		NewDensityOracle(net, 0),
		gtd,
	}
	informed := make([]bool, net.N())
	r := rng.New(9)
	for i := range informed {
		informed[i] = r.Bernoulli(0.5)
	}
	for _, pol := range policies {
		pol := pol
		if err := quick.Check(func(tRaw, atRaw uint16, iRaw uint8) bool {
			tt := int(tRaw) % 10000
			at := int(atRaw) % (tt + 1)
			i := int(iRaw) % net.N()
			pol.Prepare(tt, informed)
			p := pol.TxProb(i, tt, at)
			return p >= 0 && p <= 1
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

func TestPropertyDecaySweepCoversAllLevels(t *testing.T) {
	d := NewDecay(64) // L = 7
	seen := map[float64]bool{}
	for k := 0; k < d.L; k++ {
		seen[d.TxProb(0, 100+k, 100)] = true
	}
	if len(seen) != d.L {
		t.Fatalf("sweep hit %d distinct levels, want %d", len(seen), d.L)
	}
	for p := range seen {
		if p <= 0 || p > 0.5 {
			t.Fatalf("level %v out of (0, 0.5]", p)
		}
	}
}
