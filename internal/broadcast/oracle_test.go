package broadcast

import (
	"testing"

	"sinrcast/internal/network"
)

// checkCausality verifies the physical-possibility oracle: every
// informed non-source station must have some station within metric
// distance 1 (the absolute reception range) that was informed strictly
// earlier — otherwise the simulation delivered a message that could not
// have been sent.
func checkCausality(t *testing.T, net *network.Network, informTime []int, sources map[int]bool) {
	t.Helper()
	n := net.N()
	for i := 0; i < n; i++ {
		if informTime[i] < 0 || sources[i] {
			continue
		}
		ok := false
		for j := 0; j < n; j++ {
			if j != i && informTime[j] >= 0 && informTime[j] < informTime[i] && net.Space.Dist(i, j) <= 1 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("station %d informed at %d with no earlier-informed station in range 1", i, informTime[i])
		}
	}
}

func TestNoSCausality(t *testing.T) {
	net := genUniform(t, 64, 8, 21)
	res, err := RunNoS(net, cfgFor(net), 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("incomplete")
	}
	checkCausality(t, net, res.InformTime, map[int]bool{0: true})
}

func TestSCausality(t *testing.T) {
	net := genUniform(t, 64, 8, 23)
	res, err := RunS(net, cfgFor(net), 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("incomplete")
	}
	checkCausality(t, net, res.InformTime, map[int]bool{0: true})
}

func TestMultiSourceCausality(t *testing.T) {
	net := genUniform(t, 48, 8, 25)
	wakeAt := make([]int, net.N())
	for i := range wakeAt {
		wakeAt[i] = -1
	}
	sources := map[int]bool{0: true, 20: true, 40: true}
	for s := range sources {
		wakeAt[s] = 0
	}
	res, err := RunNoSMulti(net, cfgFor(net), 9, wakeAt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("incomplete")
	}
	checkCausality(t, net, res.InformTime, sources)
}

func TestMultiSourceStaggeredCausality(t *testing.T) {
	// Spontaneous wakes count as sources from their wake time onward:
	// check causality treating them as sources.
	net := genUniform(t, 48, 8, 27)
	cfg := cfgFor(net)
	wakeAt := make([]int, net.N())
	for i := range wakeAt {
		wakeAt[i] = -1
	}
	sources := map[int]bool{3: true, 30: true}
	wakeAt[3] = 0
	wakeAt[30] = cfg.PhaseLen() + 17
	res, err := RunNoSMulti(net, cfg, 9, wakeAt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllInformed {
		t.Fatal("incomplete")
	}
	// Station 30 may be informed by reception before its spontaneous
	// wake; either way, its inform time needs no earlier neighbor only
	// if it equals its wake time.
	if res.InformTime[30] != wakeAt[30] {
		sources = map[int]bool{3: true}
	}
	checkCausality(t, net, res.InformTime, sources)
}

func TestRunNoSMultiErrors(t *testing.T) {
	net := genPath(t, 8, 1)
	cfg := cfgFor(net)
	if _, err := RunNoSMulti(net, cfg, 1, make([]int, 3), 0); err == nil {
		t.Fatal("want error for wrong wakeAt length")
	}
	all := make([]int, net.N())
	for i := range all {
		all[i] = -1
	}
	if _, err := RunNoSMulti(net, cfg, 1, all, 0); err == nil {
		t.Fatal("want error when nobody wakes")
	}
	bad := make([]int, net.N())
	bad[0] = -7
	if _, err := RunNoSMulti(net, cfg, 1, bad, 0); err == nil {
		t.Fatal("want error for invalid wake time")
	}
}
