// Package prof centralizes the pprof wiring of the CLIs so perf work
// never hand-rolls it: one call registers -cpuprofile/-memprofile
// flags, one call starts collection, and the returned stop function
// finishes both profiles. Typical use:
//
//	profiles := prof.AddFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := profiles.Start()
//	if err != nil { ... exit 2 ... }
//	defer stop()
//
// Profiles are written on the normal return path; error paths that
// os.Exit lose them, which is fine — a run that died is profiled with
// the debugger, not pprof.
package prof

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
)

// Phase labels: the sim round loop brackets its tick / resolve /
// deliver / trace phases with Phase so a CPU profile attributes
// sim-layer time against resolver time (`pprof -tagfocus phase=...`).
// Labeling costs a goroutine label swap per phase per round, so it is
// off unless a CPU profile is being collected: Start enables it
// automatically when -cpuprofile was given, and tests can force it
// with SetPhases.

var phasesOn atomic.Bool

// SetPhases toggles pprof phase labeling and returns the previous
// value. Start flips it on for the duration of a CPU profile.
func SetPhases(on bool) (prev bool) { return phasesOn.Swap(on) }

// PhasesEnabled reports whether Phase currently applies labels. Hot
// loops check it once per round and skip the closure entirely when off,
// keeping the steady state allocation-free.
func PhasesEnabled() bool { return phasesOn.Load() }

// Phase runs fn under the pprof label phase=name when labeling is
// enabled, and plainly otherwise.
func Phase(name string, fn func()) {
	if !phasesOn.Load() {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) { fn() })
}

// Config holds the profile destinations parsed from the flags.
type Config struct {
	cpuPath string
	memPath string
}

// AddFlags registers -cpuprofile and -memprofile on fs (call before
// fs.Parse). Empty values — the default — disable profiling entirely.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.cpuPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memPath, "memprofile", "", "write a heap profile to this file on exit")
	return c
}

// Start begins CPU profiling if requested and returns the function
// that finishes both profiles: it stops the CPU profile and writes the
// heap profile (after a GC, so the snapshot shows live memory, not
// garbage). stop is never nil and is safe to call exactly once.
func (c *Config) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if c.cpuPath != "" {
		cpuFile, err = os.Create(c.cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		SetPhases(true)
	}
	memPath := c.memPath
	return func() error {
		if cpuFile != nil {
			SetPhases(false)
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
