package sinr

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sinrcast/internal/rng"
)

// cloneSeq generates a deterministic sequence of (tx, receivers) rounds
// with overlapping transmitter sets, so the hier engine's delta path
// and caches all engage.
func cloneSeq(seed uint64, n, rounds int) (tx [][]int, recv [][]int) {
	r := rng.New(seed)
	for round := 0; round < rounds; round++ {
		var t []int
		for i := 0; i < n; i++ {
			if r.Uint64()%8 < 2 { // ~25% transmit, resampled per round
				t = append(t, i)
			}
		}
		if len(t) == 0 {
			t = []int{int(r.Uint64() % uint64(n))}
		}
		tx = append(tx, t)
		if round%3 == 2 { // every third round restricts the receivers
			var rs []int
			for i := 0; i < n; i += 3 {
				rs = append(rs, i)
			}
			recv = append(recv, rs)
		} else {
			recv = append(recv, nil)
		}
	}
	return tx, recv
}

// replaySeq resolves the sequence and returns a copy of every round's
// receptions.
func replaySeq(r Resolver, tx, recv [][]int) [][]Reception {
	out := make([][]Reception, len(tx))
	for i := range tx {
		var rec []Reception
		if recv[i] != nil {
			rec = r.ResolveFor(tx[i], recv[i])
		} else {
			rec = r.Resolve(tx[i])
		}
		out[i] = append([]Reception(nil), rec...)
	}
	return out
}

// cloneOf clones via the type-switch helper, failing on non-engines.
func cloneOf(t *testing.T, r Resolver) Resolver {
	t.Helper()
	c, ok := CloneResolver(r)
	if !ok {
		t.Fatalf("CloneResolver(%T) not cloneable", r)
	}
	return c
}

// TestCloneMatchesFresh pins the Clone contract on all three engines: a
// clone taken from a *used* engine (cross-round aggregation state, warm
// caches) resolves byte-identically to a freshly constructed engine on
// the same sequence — it inherits topology, never run state.
func TestCloneMatchesFresh(t *testing.T) {
	const n = 1024
	scene := benchScene(41, n)
	p := DefaultParams()
	builders := []struct {
		name  string
		build func() (Resolver, error)
	}{
		{"exact", func() (Resolver, error) { return NewEngine(scene, p) }},
		{"grid", func() (Resolver, error) { return NewGridEngine(scene, p, DefaultCellSize, DefaultNearRadius) }},
		{"hier", func() (Resolver, error) {
			return NewHierEngine(scene, p, DefaultCellSize, DefaultNearRadius, DefaultTheta)
		}},
	}
	warmTx, warmRecv := cloneSeq(7, n, 12)
	tx, recv := cloneSeq(8, n, 24)
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			orig, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			replaySeq(orig, warmTx, warmRecv) // dirty the original's run state
			clone := cloneOf(t, orig)
			fresh, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			want := replaySeq(fresh, tx, recv)
			got := replaySeq(clone, tx, recv)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("clone of used %s engine diverges from fresh construction", b.name)
			}
			// The original must be unperturbed by the clone's rounds.
			wantOrig := replaySeq(fresh, warmTx, warmRecv)
			_ = wantOrig
			if got := replaySeq(orig, tx, recv); !reflect.DeepEqual(got, want) {
				t.Fatalf("original %s engine diverges after cloning", b.name)
			}
		})
	}
}

// TestCloneSharesTopology pins the point of the split: clones alias the
// topology slabs (one struct, shared position arrays) rather than
// copying them.
func TestCloneSharesTopology(t *testing.T) {
	scene := benchScene(42, 512)
	p := DefaultParams()
	e, err := NewEngine(scene, p)
	if err != nil {
		t.Fatal(err)
	}
	if ec := e.Clone(); ec.engineTopo != e.engineTopo {
		t.Error("exact clone copied its topology")
	}
	g, err := NewGridEngine(scene, p, DefaultCellSize, DefaultNearRadius)
	if err != nil {
		t.Fatal(err)
	}
	if gc := g.Clone(); gc.gridTopo != g.gridTopo {
		t.Error("grid clone copied its topology")
	}
	h, err := NewHierEngine(scene, p, DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	hc := h.Clone()
	if hc.hierTopo != h.hierTopo {
		t.Error("hier clone copied its topology")
	}
	// Run state is lazily allocated; force it on both before checking
	// the pyramids really are separate.
	h.Levels()
	hc.Levels()
	if &hc.levels[0].pow[0] == &h.levels[0].pow[0] {
		t.Error("hier clone shares mutable pyramid aggregates")
	}
	h.SetFrontierMemo(false)
	h.SetVectorized(false)
	h.SetDeltaCrossover(0.25)
	hc2 := h.Clone()
	if hc2.memo || hc2.vec || hc2.deltaCrossover != 0.25 {
		t.Error("hier clone did not copy tuning toggles")
	}
}

// TestCloneNotCloneable pins the fallback contract for wrapper channels.
func TestCloneNotCloneable(t *testing.T) {
	scene := benchScene(43, 64)
	f, err := NewFadingEngine(scene, DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if Cloneable(f) {
		t.Error("fading engine reported cloneable (it owns RNG state)")
	}
	if _, ok := CloneResolver(f); ok {
		t.Error("CloneResolver cloned a fading engine")
	}
	if Cloneable(nil) {
		t.Error("nil reported cloneable")
	}
}

// TestClonesRunConcurrently drives several clones of one engine on the
// same round sequence from separate goroutines (the exp trial-pool
// usage) and checks every one matches the serial reference. Run under
// -race this also proves the shared topology really is read-only.
func TestClonesRunConcurrently(t *testing.T) {
	const n, workers = 2048, 4
	scene := benchScene(44, n)
	h, err := NewHierEngine(scene, DefaultParams(), DefaultCellSize, DefaultNearRadius, DefaultTheta)
	if err != nil {
		t.Fatal(err)
	}
	tx, recv := cloneSeq(9, n, 16)
	want := replaySeq(h, tx, recv) // also dirties the prototype's state
	got := make([][][]Reception, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := h.Clone()
		c.SetWorkers(1)
		wg.Add(1)
		go func(w int, c Resolver) {
			defer wg.Done()
			got[w] = replaySeq(c, tx, recv)
		}(w, c)
	}
	wg.Wait()
	for w := range got {
		if !reflect.DeepEqual(got[w], want) {
			t.Fatalf("clone %d diverges from the serial reference", w)
		}
	}
}

// BenchmarkTrialSetup measures what the exp engine pool buys: the cost
// of readying one trial's engine, fresh construction versus cloning a
// prototype. The clone skips the bounding-box scan, cell assignment and
// both CSR counting sorts; run-state arrays are lazily allocated on
// first resolve either way, so the numbers isolate topology work. The
// acceptance gate wants cloned ≥ 5× faster at n=65536.
func BenchmarkTrialSetup(b *testing.B) {
	for _, n := range []int{16384, 65536} {
		scene := benchScene(uint64(n)+3, n)
		p := DefaultParams()
		b.Run(fmt.Sprintf("n=%d/mode=fresh", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, err := NewHierEngine(scene, p, DefaultCellSize, DefaultNearRadius, DefaultTheta)
				if err != nil {
					b.Fatal(err)
				}
				_ = h
			}
		})
		b.Run(fmt.Sprintf("n=%d/mode=clone", n), func(b *testing.B) {
			proto, err := NewHierEngine(scene, p, DefaultCellSize, DefaultNearRadius, DefaultTheta)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = proto.Clone()
			}
		})
	}
}
