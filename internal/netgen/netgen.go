// Package netgen generates the network families used by the experiments:
// uniform random deployments, grids, lines, multi-scale clusters,
// gaussian blobs, and the paper's exponential chain (footnote 2, §1.3)
// whose granularity Rs is exponential in n.
//
// Every generator returns a connected network or an error; generators
// that sample randomly retry with densified parameters until the
// communication graph is connected.
package netgen

import (
	"fmt"
	"math"

	"sinrcast/internal/geom"
	"sinrcast/internal/network"
	"sinrcast/internal/rng"
	"sinrcast/internal/sinr"
)

// Config carries the shared knobs of all generators.
type Config struct {
	// Params are the physical parameters (notably ε, which fixes the
	// communication radius 1-ε).
	Params sinr.Params
	// Seed drives all sampling.
	Seed uint64
}

// Uniform places n stations uniformly in a side×side square, retrying
// with a smaller side (denser network) until connected. The initial side
// targets the requested mean density (stations per unit ball).
func Uniform(cfg Config, n int, density float64) (*network.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netgen: n must be >= 1, got %d", n)
	}
	if density <= 0 {
		density = 6
	}
	r := rng.New(cfg.Seed)
	// side chosen so that n stations give ~density stations per ball of
	// comm radius: n·π·rad² / side² = density.
	rad := cfg.Params.CommRadius()
	side := math.Sqrt(float64(n) * math.Pi * rad * rad / density)
	for attempt := 0; attempt < 40; attempt++ {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
		}
		net, err := network.New(geom.NewEuclidean(pts), cfg.Params)
		if err != nil {
			return nil, err
		}
		if net.Connected() {
			return net, nil
		}
		side *= 0.92 // densify and retry
	}
	return nil, fmt.Errorf("netgen: could not generate connected uniform network (n=%d)", n)
}

// Grid places stations on a √n×√n lattice with the given spacing
// (must be ≤ comm radius for connectivity).
func Grid(cfg Config, n int, spacing float64) (*network.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netgen: n must be >= 1, got %d", n)
	}
	if spacing <= 0 || spacing > cfg.Params.CommRadius() {
		return nil, fmt.Errorf("netgen: spacing %v must be in (0, %v]", spacing, cfg.Params.CommRadius())
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, geom.Point{
			X: float64(i%cols) * spacing,
			Y: float64(i/cols) * spacing,
		})
	}
	return network.New(geom.NewEuclidean(pts), cfg.Params)
}

// Path places n stations on a line with uniform gap = fraction·commRadius,
// giving a path-like communication graph with diameter ~n·fraction.
func Path(cfg Config, n int, fraction float64) (*network.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netgen: n must be >= 1, got %d", n)
	}
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("netgen: fraction %v must be in (0,1]", fraction)
	}
	gap := cfg.Params.CommRadius() * fraction
	coords := make([]float64, n)
	for i := range coords {
		coords[i] = float64(i) * gap
	}
	return network.New(geom.NewLine(coords), cfg.Params)
}

// ExponentialChain builds the paper's footnote-2 worst case: stations on
// a line with dist(x_i, x_{i+1}) = ratio^i · first. Granularity grows as
// ratio^n while the whole chain fits inside one communication ball, so
// D = O(1) but geometry-sensitive algorithms degrade.
//
// ratio must be in (0,1); first is the first gap (≤ comm radius).
func ExponentialChain(cfg Config, n int, first, ratio float64) (*network.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netgen: n must be >= 1, got %d", n)
	}
	if ratio <= 0 || ratio >= 1 {
		return nil, fmt.Errorf("netgen: ratio %v must be in (0,1)", ratio)
	}
	if first <= 0 || first > cfg.Params.CommRadius() {
		return nil, fmt.Errorf("netgen: first gap %v must be in (0, %v]", first, cfg.Params.CommRadius())
	}
	coords := make([]float64, n)
	gap := first
	for i := 1; i < n; i++ {
		coords[i] = coords[i-1] + gap
		gap *= ratio
		// Clamp to avoid denormal-gap pathologies in float math while
		// preserving exponential granularity.
		if gap < 1e-12 {
			gap = 1e-12
		}
	}
	return network.New(geom.NewLine(coords), cfg.Params)
}

// Clusters places k dense clusters of m stations each (n = k·m) along a
// line of loosely connected hubs: inside a cluster stations pack within
// clusterRadius; consecutive clusters sit bridgeGap apart (must be ≤ comm
// radius for connectivity). This is the paper's motivating "non-uniform
// density" scenario: per-ball densities differ by orders of magnitude.
func Clusters(cfg Config, k, m int, clusterRadius, bridgeGap float64) (*network.Network, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("netgen: k=%d, m=%d must be >= 1", k, m)
	}
	if clusterRadius <= 0 || clusterRadius > cfg.Params.CommRadius()/2 {
		return nil, fmt.Errorf("netgen: clusterRadius %v out of range", clusterRadius)
	}
	if bridgeGap <= 0 || bridgeGap > cfg.Params.CommRadius() {
		return nil, fmt.Errorf("netgen: bridgeGap %v out of range", bridgeGap)
	}
	r := rng.New(cfg.Seed)
	pts := make([]geom.Point, 0, k*m)
	for c := 0; c < k; c++ {
		cx := float64(c) * bridgeGap
		// First station of each cluster sits exactly at the hub so
		// consecutive hubs are adjacent.
		pts = append(pts, geom.Point{X: cx, Y: 0})
		for s := 1; s < m; s++ {
			ang := r.Range(0, 2*math.Pi)
			rad := clusterRadius * math.Sqrt(r.Float64())
			pts = append(pts, geom.Point{
				X: cx + rad*math.Cos(ang),
				Y: rad * math.Sin(ang),
			})
		}
	}
	return network.New(geom.NewEuclidean(pts), cfg.Params)
}

// Gaussian places n stations in a 2D gaussian blob with the given
// standard deviation, retrying with smaller sigma until connected.
func Gaussian(cfg Config, n int, sigma float64) (*network.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netgen: n must be >= 1, got %d", n)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("netgen: sigma %v must be positive", sigma)
	}
	r := rng.New(cfg.Seed)
	for attempt := 0; attempt < 40; attempt++ {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: sigma * r.NormFloat64(), Y: sigma * r.NormFloat64()}
		}
		net, err := network.New(geom.NewEuclidean(pts), cfg.Params)
		if err != nil {
			return nil, err
		}
		if net.Connected() {
			return net, nil
		}
		sigma *= 0.9
	}
	return nil, fmt.Errorf("netgen: could not generate connected gaussian network (n=%d)", n)
}

// ClusteredPath builds the E6 experiment topology: a path of pathLen
// stations spaced 0.9·commRadius apart (fixing the diameter), with an
// exponential cluster of clusterSize stations attached at station 0 —
// consecutive cluster gaps shrink by ratio, so granularity Rs grows as
// ratio^-clusterSize while D stays ~pathLen. This isolates granularity
// from diameter: geometry-sensitive algorithms slow down along Rs,
// geometry-oblivious ones stay flat.
func ClusteredPath(cfg Config, pathLen, clusterSize int, ratio float64) (*network.Network, error) {
	if pathLen < 2 || clusterSize < 1 {
		return nil, fmt.Errorf("netgen: pathLen=%d, clusterSize=%d out of range", pathLen, clusterSize)
	}
	if ratio <= 0 || ratio >= 1 {
		return nil, fmt.Errorf("netgen: ratio %v must be in (0,1)", ratio)
	}
	gap := cfg.Params.CommRadius() * 0.9
	coords := make([]float64, 0, pathLen+clusterSize)
	for i := 0; i < pathLen; i++ {
		coords = append(coords, float64(i)*gap)
	}
	// The cluster hangs off station 0 toward negative coordinates, well
	// within one communication ball.
	cgap := cfg.Params.CommRadius() / 8
	pos := 0.0
	for i := 0; i < clusterSize; i++ {
		pos -= cgap
		coords = append(coords, pos)
		cgap *= ratio
		if cgap < 1e-12 {
			cgap = 1e-12
		}
	}
	return network.New(geom.NewLine(coords), cfg.Params)
}

// RandomWalkCorridor grows a connected "snake" deployment: each next
// station is placed a uniform step (within comm radius) from the
// previous one, producing large-diameter meandering networks.
func RandomWalkCorridor(cfg Config, n int, step float64) (*network.Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("netgen: n must be >= 1, got %d", n)
	}
	if step <= 0 || step > cfg.Params.CommRadius() {
		return nil, fmt.Errorf("netgen: step %v out of (0, comm radius]", step)
	}
	r := rng.New(cfg.Seed)
	pts := make([]geom.Point, n)
	heading := 0.0
	for i := 1; i < n; i++ {
		heading += r.Range(-0.5, 0.5)
		pts[i] = geom.Point{
			X: pts[i-1].X + step*math.Cos(heading),
			Y: pts[i-1].Y + step*math.Sin(heading),
		}
	}
	return network.New(geom.NewEuclidean(pts), cfg.Params)
}
