package alert

import (
	"testing"

	"sinrcast/internal/netgen"
	"sinrcast/internal/network"
	"sinrcast/internal/sinr"
)

func genNet(t testing.TB, n int, seed uint64) *network.Network {
	t.Helper()
	net, err := netgen.Uniform(netgen.Config{Params: sinr.DefaultParams(), Seed: seed}, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func cfgFor(net *network.Network) Config {
	return DefaultConfig(net.N(), net.Space.Growth(), net.Params.Eps)
}

func TestAlertPositiveSingleRaiser(t *testing.T) {
	net := genNet(t, 48, 3)
	raised := make([]bool, net.N())
	raised[net.N()-1] = true
	res, err := Run(net, cfgFor(net), 7, raised)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("single-raiser alert not delivered to everyone")
	}
	for i, out := range res.Outputs {
		if !out {
			t.Fatalf("station %d missed the alert", i)
		}
	}
}

func TestAlertPositiveManyRaisers(t *testing.T) {
	net := genNet(t, 48, 5)
	raised := make([]bool, net.N())
	for i := 0; i < net.N(); i += 7 {
		raised[i] = true
	}
	res, err := Run(net, cfgFor(net), 9, raised)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("multi-raiser alert failed")
	}
}

func TestAlertNegativeStaysSilent(t *testing.T) {
	net := genNet(t, 48, 7)
	raised := make([]bool, net.N())
	res, err := Run(net, cfgFor(net), 11, raised)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("false alert reported")
	}
	for i, out := range res.Outputs {
		if out {
			t.Fatalf("station %d fabricated an alert", i)
		}
	}
	if res.FloodTransmissions != 0 {
		t.Fatalf("negative case transmitted %d times in the flood window", res.FloodTransmissions)
	}
}

func TestAlertErrors(t *testing.T) {
	net := genNet(t, 16, 9)
	cfg := cfgFor(net)
	if _, err := Run(net, cfg, 1, make([]bool, 3)); err == nil {
		t.Fatal("want error for wrong flag count")
	}
	bad := cfg
	bad.CProb = 0
	if _, err := Run(net, bad, 1, make([]bool, net.N())); err == nil {
		t.Fatal("want error for invalid config")
	}
	wrongN := DefaultConfig(net.N()+1, 2, net.Params.Eps)
	if _, err := Run(net, wrongN, 1, make([]bool, net.N())); err == nil {
		t.Fatal("want error for size mismatch")
	}
}

func TestAlertDeterministic(t *testing.T) {
	net := genNet(t, 32, 11)
	raised := make([]bool, net.N())
	raised[0] = true
	a, err := Run(net, cfgFor(net), 5, raised)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, cfgFor(net), 5, raised)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Transmissions != b.Metrics.Transmissions {
		t.Fatal("nondeterministic alert run")
	}
}

func TestConfigValidateTable(t *testing.T) {
	net := genNet(t, 16, 13)
	ok := cfgFor(net)
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{"valid", func(c *Config) {}, false},
		{"negative window", func(c *Config) { c.WindowRounds = -1 }, true},
		{"no sizing", func(c *Config) { c.WindowFactor = 0 }, true},
		{"explicit window", func(c *Config) { c.WindowRounds = 500; c.WindowFactor = 0 }, false},
		{"bad cprob", func(c *Config) { c.CProb = -1 }, true},
		{"bad coloring", func(c *Config) { c.Coloring.N = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := ok
			tt.mutate(&c)
			if err := c.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}
