package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist = %v, want %v", got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); math.Abs(got-tt.want*tt.want) > 1e-12 {
				t.Errorf("Dist2 = %v, want %v", got, tt.want*tt.want)
			}
		})
	}
}

func TestPointDistSymmetric(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		p := Point{clamp(ax), clamp(ay)}
		q := Point{clamp(bx), clamp(by)}
		return math.Abs(p.Dist(q)-q.Dist(p)) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestEuclideanSpace(t *testing.T) {
	e := NewEuclidean([]Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	if g := e.Growth(); g != 2 {
		t.Fatalf("Growth = %v", g)
	}
	if d := e.Dist(0, 3); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("Dist(0,3) = %v", d)
	}
	if p := e.Position(2); p != (Point{0, 1}) {
		t.Fatalf("Position(2) = %v", p)
	}
	if err := CheckMetric(e); err != nil {
		t.Fatal(err)
	}
}

func TestLineSpace(t *testing.T) {
	l := NewLine([]float64{0, 0.5, 2, -1})
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	if g := l.Growth(); g != 1 {
		t.Fatalf("Growth = %v", g)
	}
	if d := l.Dist(2, 3); d != 3 {
		t.Fatalf("Dist(2,3) = %v", d)
	}
	if p := l.Position(1); p != (Point{X: 0.5}) {
		t.Fatalf("Position = %v", p)
	}
	if err := CheckMetric(l); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixSpaceValid(t *testing.T) {
	d := [][]float64{
		{0, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	}
	m, err := NewMatrixSpace(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist(0, 2) != 2 {
		t.Fatalf("Dist(0,2) = %v", m.Dist(0, 2))
	}
	if m.Position(0) != (Point{}) {
		t.Fatal("Position without embed should be origin")
	}
	m.Embed = []Point{{1, 1}, {2, 2}, {3, 3}}
	if m.Position(1) != (Point{2, 2}) {
		t.Fatal("Position with embed wrong")
	}
}

func TestMatrixSpaceRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		d    [][]float64
	}{
		{"ragged", [][]float64{{0, 1}, {1}}},
		{"nonzero diagonal", [][]float64{{1, 1}, {1, 0}}},
		{"asymmetric", [][]float64{{0, 1}, {2, 0}}},
		{"negative", [][]float64{{0, -1}, {-1, 0}}},
		{"triangle violation", [][]float64{
			{0, 1, 10},
			{1, 0, 1},
			{10, 1, 0},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMatrixSpace(tt.d, 1); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestBallPoints(t *testing.T) {
	l := NewLine([]float64{0, 1, 2, 3, 4})
	got := BallPoints(l, 2, 1.5)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("BallPoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BallPoints = %v, want %v", got, want)
		}
	}
	if c := BallCount(l, 2, 1.5); c != 3 {
		t.Fatalf("BallCount = %d", c)
	}
	// Ball always contains its own center.
	for i := 0; i < l.Len(); i++ {
		if BallCount(l, i, 0) != 1 {
			t.Fatalf("BallCount(i,0) != 1 at %d", i)
		}
	}
}

func TestCoverNumberLine(t *testing.T) {
	// 9 points spaced 0.5 apart: a ball of radius 2 around the middle has
	// 9 points spanning [0,4]; radius-0.5 balls cover 2 neighbors each.
	coords := make([]float64, 9)
	for i := range coords {
		coords[i] = float64(i) * 0.5
	}
	l := NewLine(coords)
	chi := CoverNumber(l, 4, 2, 0.5)
	if chi < 3 || chi > 5 {
		t.Fatalf("CoverNumber = %d, want 3..5", chi)
	}
	// Covering with balls of the same radius takes exactly 1 ball.
	if chi := CoverNumber(l, 4, 1, 2.5); chi != 1 {
		t.Fatalf("CoverNumber same radius = %d, want 1", chi)
	}
}

func TestGrowthWitnessEuclideanGrid(t *testing.T) {
	// A dense grid in the plane: χ(c·d, d) should grow like c², so the
	// normalized witness stays bounded by a small constant.
	var pts []Point
	for x := -10; x <= 10; x++ {
		for y := -10; y <= 10; y++ {
			pts = append(pts, Point{float64(x) / 2, float64(y) / 2})
		}
	}
	e := NewEuclidean(pts)
	center := len(pts) / 2
	w := GrowthWitness(e, center, 1, []int{1, 2, 4})
	if w > 6 {
		t.Fatalf("growth witness %v too large for the plane", w)
	}
}

func TestGrowthWitnessLine(t *testing.T) {
	coords := make([]float64, 101)
	for i := range coords {
		coords[i] = float64(i) * 0.1
	}
	l := NewLine(coords)
	w := GrowthWitness(l, 50, 0.5, []int{1, 2, 4, 8})
	if w > 4 {
		t.Fatalf("growth witness %v too large for the line", w)
	}
}

func TestPackingNumber(t *testing.T) {
	coords := []float64{0, 1, 2, 3, 4}
	l := NewLine(coords)
	// 1-separated points within radius 2 of point 2: greedy picks every
	// point since spacing is exactly 1.
	if p := PackingNumber(l, 2, 2, 1); p != 5 {
		t.Fatalf("PackingNumber = %d, want 5", p)
	}
	// 3-separated: at most 2 fit in [0,4].
	if p := PackingNumber(l, 2, 2, 3); p < 1 || p > 2 {
		t.Fatalf("PackingNumber(sep=3) = %d", p)
	}
}

func TestMinPairwiseDist(t *testing.T) {
	l := NewLine([]float64{0, 10, 10.25, 20})
	d, i, j := MinPairwiseDist(l)
	if math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("min dist = %v", d)
	}
	if i != 1 || j != 2 {
		t.Fatalf("pair = (%d,%d), want (1,2)", i, j)
	}
	if d, i, j := MinPairwiseDist(NewLine([]float64{5})); d != 0 || i != -1 || j != -1 {
		t.Fatal("single point should return zero value")
	}
}

func TestCheckMetricCatchesViolation(t *testing.T) {
	m := &MatrixSpace{D: [][]float64{
		{0, 1, 5},
		{1, 0, 1},
		{5, 1, 0},
	}, Degree: 1}
	if err := CheckMetric(m); err == nil {
		t.Fatal("CheckMetric accepted a triangle violation")
	}
}
