package protocol

import (
	"errors"
	"math"
	"strings"
	"testing"

	"sinrcast/internal/scenario"
	"sinrcast/internal/sinr"
)

// TestSpecStringGolden pins the canonical compact form: parameters
// sorted by name, shortest float rendering, name alone when no
// parameters are set.
func TestSpecStringGolden(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		want string
	}{
		{Spec{Name: "nos"}, "nos"},
		{Spec{Name: "nos", Params: map[string]float64{"source": 5, "budgetmul": 2}}, "nos:budgetmul=2,source=5"},
		{Spec{Name: "oracle", Params: map[string]float64{"c": 0.25, "budget": 500}}, "oracle:budget=500,c=0.25"},
		{Spec{Name: "consensus", Params: map[string]float64{"x": 31}}, "consensus:x=31"},
	} {
		if got := tc.spec.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestParseRoundTrip checks Parse(s).String() == canonical form for
// spaced, reordered and bare inputs.
func TestParseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"nos", "nos"},
		{"nos:source=3,budgetmul=2", "nos:budgetmul=2,source=3"},
		{" s:maxtxprob=0.5 , cprob=4 ", "s:cprob=4,maxtxprob=0.5"},
		{"wakeup:wakers=4,stagger=0.25", "wakeup:stagger=0.25,wakers=4"},
		{"alert:raised=0", "alert:raised=0"},
		{"leader", "leader"},
	} {
		sp, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got := sp.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Errorf("reparse %q: %v", sp.String(), err)
			continue
		}
		if again.String() != tc.want {
			t.Errorf("reparse drifted: %q -> %q", tc.want, again.String())
		}
	}
}

// TestParseErrors checks the error surface of the compact form.
func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		in      string
		wantSub string
	}{
		{"", "empty spec"},
		{"nosuchproto", "unknown protocol"},
		{"nosuchproto:x=1", "unknown protocol"},
		{"nos:", "empty parameter list"},
		{"nos:source", "malformed parameter"},
		{"nos:source=", "malformed parameter"},
		{"nos:=3", "malformed parameter"},
		{"nos:bogus=1", "no parameter \"bogus\""},
		{"nos:source=abc", "not a number"},
		{"nos:source=1,source=2", "given twice"},
	} {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", tc.in, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.in, err, tc.wantSub)
		}
	}
}

// TestRunValidation checks range, integrality and unknown-name
// rejection for programmatically built specs, plus the
// network-dependent checks of individual runners.
func TestRunValidation(t *testing.T) {
	net, err := scenario.Generate(scenario.Spec{Family: "grid", Params: map[string]float64{"n": 16, "spacing": 0.5}},
		sinr.DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		spec    Spec
		wantSub string
	}{
		{Spec{Name: "nope"}, "unknown protocol"},
		{Spec{Name: "nos", Params: map[string]float64{"bogus": 1}}, "no parameter"},
		{Spec{Name: "nos", Params: map[string]float64{"source": -1}}, "outside"},
		{Spec{Name: "nos", Params: map[string]float64{"source": 2.5}}, "must be an integer"},
		{Spec{Name: "nos", Params: map[string]float64{"source": 2e9}}, "outside"},
		{Spec{Name: "nos", Params: map[string]float64{"maxtxprob": math.Inf(1)}}, "outside"},
		{Spec{Name: "nos", Params: map[string]float64{"source": 99}}, "outside"},
		{Spec{Name: "nosmulti", Params: map[string]float64{"sources": 99}}, "exceeds n"},
		{Spec{Name: "wakeup", Params: map[string]float64{"wakers": 99}}, "exceeds n"},
		{Spec{Name: "alert", Params: map[string]float64{"raised": 99}}, "exceeds n"},
	} {
		_, err := Run(net, tc.spec, 1)
		if err == nil {
			t.Errorf("Run(%v): want error containing %q, got nil", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Run(%v) error = %q, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
	// Spec-vs-network mismatches carry the typed SpecError so CLIs can
	// classify them as usage errors.
	for _, spec := range []Spec{
		{Name: "nos", Params: map[string]float64{"source": 99}},
		{Name: "wakeup", Params: map[string]float64{"wakers": 99}},
	} {
		_, err := Run(net, spec, 1)
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("Run(%v) error %v is not a *SpecError", spec, err)
		}
	}
}

// TestDescribeListsEverything checks the -list catalogue names every
// protocol and every parameter.
func TestDescribeListsEverything(t *testing.T) {
	desc := Describe()
	for _, p := range Protocols() {
		if !strings.Contains(desc, p.Name+" — ") {
			t.Errorf("catalogue missing protocol %q", p.Name)
		}
		for _, q := range p.Params {
			if !strings.Contains(desc, q.Doc) {
				t.Errorf("catalogue missing doc for %s.%s", p.Name, q.Name)
			}
		}
	}
}

// TestRegistryCoversEveryMigratedAlgorithm pins the migration: all six
// former broadcast-sim switch arms plus the multi-source engine and
// the four §5 applications are one Lookup away.
func TestRegistryCoversEveryMigratedAlgorithm(t *testing.T) {
	for _, name := range []string{
		"nos", "s", "nosmulti",
		"decay", "daum", "oracle", "tdma",
		"wakeup", "consensus", "leader", "alert",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("protocol %q not registered", name)
		}
	}
	if len(Names()) < 11 {
		t.Errorf("registry has %d protocols, want >= 11", len(Names()))
	}
}
